//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`/
//! `boxed`, unions ([`prop_oneof!`]), tuple/range/collection/option
//! strategies, [`prelude::any`], and the [`proptest!`] runner macro
//! with `prop_assert!`/`prop_assert_eq!`/`prop_assume!`.
//!
//! Differences from upstream: cases are sampled from a fixed
//! per-test deterministic seed, and failing cases are reported
//! without shrinking.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Namespace facade mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.

    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    use crate::strategy::Any;
    use rand::distributions::{Distribution, Standard};

    /// Strategy producing any value of `T` (full-range uniform).
    pub fn any<T>() -> Any<T>
    where
        Standard: Distribution<T>,
    {
        Any::new()
    }

    /// Re-export so `Just(...)` works unqualified (upstream parity).
    pub use crate::strategy::Union;
}

/// One-of strategy over equally weighted alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property; failure fails the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::new_rng(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(20).max(1000);
            while __passed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "proptest `{}`: too many rejected cases ({} attempts for {} target cases)",
                    stringify!($name), __attempts, __config.cases,
                );
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                        )+
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "proptest `{}` failed at case {}: {}",
                        stringify!($name), __passed, msg,
                    ),
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

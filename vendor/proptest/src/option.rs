//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy generating `Option<T>` (mostly `Some`, as upstream).
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Option` strategy: `Some` three times out of four.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive-lower, exclusive-upper length range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

//! Case execution support for the [`crate::proptest!`] macro.

use rand::SeedableRng;

/// The generator property cases are sampled from.
pub type TestRng = rand::rngs::SmallRng;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for Config {
    /// 64 cases — enough to exercise the samplers while keeping the
    /// simulation-heavy suite quick.
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; try another case.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

/// A deterministic per-test generator: same test name, same stream,
/// every run (upstream persists failing seeds; we sidestep the need).
pub fn new_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

//! Offline stand-in for the `crossbeam` crate: scoped threads built on
//! `std::thread::scope`, with crossbeam's `Result`-returning signature
//! (a panicking worker yields `Err` instead of unwinding the caller).

use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scope handle; closures passed to [`Scope::spawn`] receive one.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker that may borrow from the enclosing scope.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope in which borrowing threads can be spawned; all
/// workers are joined before this returns. Returns `Err` with the
/// panic payload if any worker (or `f` itself) panicked.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn workers_share_borrows() {
        let counter = AtomicU32::new(0);
        let out = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_is_an_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}

//! # jem — energy-aware compilation and execution for Java-like mobile VMs
//!
//! Facade crate re-exporting the whole workspace. This reproduces the
//! system of Chen et al., *Energy-Aware Compilation and Execution in
//! Java-Enabled Mobile Devices* (IPPS 2003): a miniature Java-like VM
//! (MJVM) running on a simulated 100 MHz wireless PDA that dynamically
//! decides, per method invocation, whether to
//!
//! * interpret bytecode locally,
//! * JIT-compile locally at one of three optimization levels and run
//!   natively,
//! * download pre-compiled native code from a server (remote
//!   compilation), or
//! * ship the invocation to a 750 MHz server entirely (remote
//!   execution), powering the client down while it waits —
//!
//! whichever minimizes the client's battery energy under the current
//! wireless channel conditions and input sizes.
//!
//! See the sub-crates:
//! * [`energy`] — instruction-level energy simulation (paper Fig 1),
//! * [`radio`] — WCDMA component/channel model (paper Fig 2),
//! * [`jvm`] — the MJVM: bytecode, interpreter, serializer, JIT,
//! * [`sim`] — discrete-event core and scenario drivers,
//! * [`core`] — the adaptive strategies (R/I/L1/L2/L3/AL/AA),
//! * [`apps`] — the eight benchmarks (paper Fig 3).

pub use jem_apps as apps;
pub use jem_core as core;
pub use jem_energy as energy;
pub use jem_jvm as jvm;
pub use jem_radio as radio;
pub use jem_sim as sim;

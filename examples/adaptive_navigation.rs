//! A hand-held navigation device (the paper's Path-Finder scenario):
//! the user repeatedly asks for shortest-path trees while walking
//! through changing radio conditions — the signal degrades as they
//! enter a building and recovers outside.
//!
//! Shows the adaptive strategy switching execution sites as the
//! channel changes, and compares its total energy against the static
//! strategies on the same trace.
//!
//! Run with: `cargo run --release --example adaptive_navigation`

use jem::core::{run_scenario, Profile, Strategy};
use jem::radio::{ChannelClass, ChannelProcess};
use jem::sim::{Scenario, Situation, SizeDist};
use jem_apps::workload_by_name;

fn main() {
    let pf = workload_by_name("pf").expect("pf");
    println!("profiling path-finder...");
    let profile = Profile::build(pf.as_ref(), 42);

    // A walk: outdoors (C4) → entering a mall (C3/C2) → parking
    // garage (C1) → back out. One shortest-path query per step.
    let mut trace = Vec::new();
    trace.extend(std::iter::repeat_n(ChannelClass::C4, 12));
    trace.extend(std::iter::repeat_n(ChannelClass::C3, 6));
    trace.extend(std::iter::repeat_n(ChannelClass::C2, 6));
    trace.extend(std::iter::repeat_n(ChannelClass::C1, 12));
    trace.extend(std::iter::repeat_n(ChannelClass::C2, 4));
    trace.extend(std::iter::repeat_n(ChannelClass::C4, 10));
    let steps = trace.len();

    let scenario = Scenario {
        situation: Situation::Uniform,
        channel: ChannelProcess::trace(trace),
        sizes: SizeDist::Choice(vec![64, 128]),
        runs: steps,
        seed: 99,
        faults: jem_sim::FaultSpec::NONE,
    };

    // The adaptive run, with the mode timeline.
    let adaptive = run_scenario(pf.as_ref(), &profile, &scenario, Strategy::AdaptiveAdaptive);
    println!("\nstep  channel  mode          energy");
    for (i, r) in adaptive.reports.iter().enumerate() {
        println!(
            "{i:>4}  {}  {:<12} {}",
            r.true_class,
            r.mode.to_string(),
            r.energy
        );
    }

    // The comparison table.
    println!("\nstrategy totals over the same walk:");
    for strategy in Strategy::ALL {
        let r = if strategy == Strategy::AdaptiveAdaptive {
            adaptive.clone()
        } else {
            run_scenario(pf.as_ref(), &profile, &scenario, strategy)
        };
        println!(
            "  {:<3} {:>12}   (remote {} / interpreted {} / native {:?})",
            strategy.key(),
            r.total_energy.to_string(),
            r.stats.remote,
            r.stats.interpreted,
            r.stats.local,
        );
    }
}

//! Quickstart: the whole framework in one page.
//!
//! Builds a benchmark application (the function evaluator), profiles
//! it (compile energies + curve-fitted execution/remote cost models),
//! and runs it under the adaptive strategy while the wireless channel
//! changes — printing where each invocation executed and what it cost.
//!
//! Run with: `cargo run --release --example quickstart`

use jem::core::{EnergyAwareVm, Profile, Strategy};
use jem::radio::ChannelClass;
use jem_apps::workload_by_name;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // 1. A workload: an MJVM program with one annotated "potential
    //    method" (fe.integrate) plus its input generator.
    let workload = workload_by_name("fe").expect("fe is built in");
    println!("workload: {} — {}", workload.name(), workload.description());

    // 2. Profile it: compile the plan at Local1/2/3, fit energy curves
    //    over the calibration sizes, measure serialized sizes and
    //    server times. This is what the paper embeds in the class file.
    let profile = Profile::build(workload.as_ref(), 42);
    println!(
        "profile: compile energies L1/L2/L3 = {} / {} / {} (+ one-time compiler load {})",
        profile.compile_energy[0],
        profile.compile_energy[1],
        profile.compile_energy[2],
        profile.compiler_init_energy,
    );

    // 3. An energy-aware VM: mobile client + 750 MHz server + WCDMA
    //    link + pilot channel estimator + per-method adaptive state.
    let mut vm = EnergyAwareVm::new(workload.as_ref(), &profile);
    let mut rng = SmallRng::seed_from_u64(7);

    // 4. Invoke the potential method under the AA strategy while the
    //    channel sweeps from great to terrible and back.
    let channel_trace = [
        ChannelClass::C4,
        ChannelClass::C4,
        ChannelClass::C4,
        ChannelClass::C3,
        ChannelClass::C2,
        ChannelClass::C1,
        ChannelClass::C1,
        ChannelClass::C2,
        ChannelClass::C3,
        ChannelClass::C4,
    ];
    println!("\ninv  size  channel  executed as     energy");
    for (i, &true_class) in channel_trace.iter().enumerate() {
        let size = 2048;
        let report = vm
            .invoke_once(Strategy::AdaptiveAdaptive, size, true_class, &mut rng)
            .expect("benchmark runs cleanly");
        println!(
            "{i:>3}  {size:>4}  {true_class}  {:<14} {}",
            report.mode.to_string(),
            report.energy
        );
        vm.end_invocation();
    }

    println!(
        "\ntotals: {} over {}  (decisions: {:?})",
        vm.total_energy(),
        vm.total_time(),
        vm.stats
    );
}

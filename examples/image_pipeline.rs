//! An embedded image-processing pipeline (the paper's motivating
//! domain): median-filter then edge-detect a PGM image on the mobile
//! client, letting the framework decide per stage whether to run on
//! the device or offload to the server.
//!
//! Writes `median.pgm` and `edges.pgm` next to the input, and prints
//! the per-stage energy ledger.
//!
//! Run with:
//! `cargo run --release --example image_pipeline [input.pgm]`
//! (without an argument, a synthetic 64x64 test image is used).

use jem::core::{EnergyAwareVm, Profile, Strategy};
use jem::jvm::Value;
use jem::radio::ChannelClass;
use jem_apps::pgm::Pgm;
use jem_apps::util::{alloc_ints, gen_image, read_ints};
use jem_apps::workload_by_name;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut rng = SmallRng::seed_from_u64(1234);

    // Load (or synthesize) a square grayscale image.
    let img = match args.get(1) {
        Some(path) => {
            let bytes = std::fs::read(path).expect("readable input file");
            let pgm = Pgm::parse(&bytes).expect("valid PGM");
            assert_eq!(pgm.width, pgm.height, "this demo expects square images");
            pgm
        }
        None => Pgm::square(64, gen_image(64, &mut rng)),
    };
    let edge = img.width;
    println!("input: {edge}x{edge} PGM");

    // Stage 1: median filter.
    let mf = workload_by_name("mf").expect("mf");
    let mf_profile = Profile::build(mf.as_ref(), 42);
    let mut vm = EnergyAwareVm::new(mf.as_ref(), &mf_profile);
    let h = alloc_ints(&mut vm.client.heap, &img.pixels);
    // Drive the runtime directly with explicit args (the Workload
    // generator is for experiments; applications pass real data).
    let before = vm.client.machine.energy();
    let out = vm
        .client
        .invoke(
            mf.potential_method(),
            vec![Value::Int(edge as i32), Value::Ref(h)],
        )
        .expect("median filter runs");
    let denoised = read_ints(
        &vm.client.heap,
        out.expect("returns image").as_ref().unwrap(),
    );
    println!(
        "stage 1 (median filter, local interpreted): {}",
        vm.client.machine.energy() - before
    );
    std::fs::write("median.pgm", Pgm::square(edge, denoised.clone()).to_p5())
        .expect("writable cwd");

    // Stage 2: edge detection through the adaptive runtime — the
    // framework decides local vs remote per invocation. Feed it a few
    // repeated frames (a video-ish workload) over a good channel.
    let ed = workload_by_name("ed").expect("ed");
    let ed_profile = Profile::build(ed.as_ref(), 42);
    let mut vm = EnergyAwareVm::new(ed.as_ref(), &ed_profile);
    let mut last = None;
    for frame in 0..4 {
        let report = vm
            .invoke_once(
                Strategy::AdaptiveAdaptive,
                edge as u32,
                ChannelClass::C4,
                &mut rng,
            )
            .expect("edge detector runs");
        println!(
            "stage 2 frame {frame}: executed {} — {}",
            report.mode, report.energy
        );
        last = Some(report);
        vm.end_invocation();
    }
    let _ = last;

    // Render the final edges locally once more to write the artifact
    // (end_invocation cleared the heap between frames).
    let h = alloc_ints(&mut vm.client.heap, &denoised);
    let out = vm
        .client
        .invoke(
            ed.potential_method(),
            vec![Value::Int(edge as i32), Value::Ref(h)],
        )
        .expect("edge detector runs");
    let edges = read_ints(
        &vm.client.heap,
        out.expect("returns image").as_ref().unwrap(),
    );
    std::fs::write("edges.pgm", Pgm::square(edge, edges).to_p5()).expect("writable cwd");

    println!(
        "\nwrote median.pgm and edges.pgm; total client energy {} ({})",
        vm.total_energy(),
        vm.client.machine.breakdown()
    );
}

//! Remote compilation (paper §3.3): instead of running the JIT on the
//! battery, download pre-compiled, linkable native code from a trusted
//! server.
//!
//! Shows, per optimization level and channel class, the energy of
//! compiling locally (including the one-time compiler-class load) vs
//! downloading — then performs an actual download, runs the installed
//! code, and verifies the result matches local execution bit for bit.
//!
//! Run with: `cargo run --release --example remote_compilation`

use jem::core::{rcomp, strategy::compile_source, Profile};
use jem::jvm::{OptLevel, Vm};
use jem::radio::{ChannelClass, Link};
use jem_apps::workload_by_name;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let w = workload_by_name("sort").expect("sort");
    println!("profiling {}...", w.name());
    let profile = Profile::build(w.as_ref(), 42);

    println!("\nlocal vs remote compilation estimates (cold client):");
    println!("level   local (w/ compiler load)   download C1      download C4      AA picks");
    for level in OptLevel::ALL {
        let local = profile.e_compile_local(level, false);
        let dl_c1 = profile.e_remote_compile(level, ChannelClass::C1);
        let dl_c4 = profile.e_remote_compile(level, ChannelClass::C4);
        let (remote_best, _) = compile_source(&profile, level, ChannelClass::C4, false);
        println!(
            "{:<6}  {:<25}  {:<15}  {:<15}  {}",
            level.name(),
            local.to_string(),
            dl_c1.to_string(),
            dl_c4.to_string(),
            if remote_best {
                "download"
            } else {
                "compile locally"
            },
        );
    }

    // Do it for real: download Local3 code over a Class 4 channel.
    let mut client = Vm::client(w.program());
    let mut link = Link::default();
    let report = rcomp::download_and_install(
        &mut client,
        &profile,
        OptLevel::L3,
        &mut link,
        ChannelClass::C4,
    );
    println!(
        "\ndownloaded {} bytes of Local3 code; radio energy {}",
        report.code_bytes, report.radio_energy
    );

    // Run the downloaded code and check it against a bytecode-only VM.
    let mut rng = SmallRng::seed_from_u64(5);
    let args = w.make_args(&mut client.heap, 512, &mut rng.clone());
    let native_result = client
        .invoke(w.potential_method(), args)
        .expect("downloaded code runs");

    let mut reference = Vm::client(w.program());
    let ref_args = w.make_args(&mut reference.heap, 512, &mut rng);
    let interp_result = reference
        .invoke(w.potential_method(), ref_args)
        .expect("interpreter runs");

    // Both return array handles into different heaps; compare contents.
    let a = jem_apps::util::read_ints(&client.heap, native_result.unwrap().as_ref().unwrap());
    let b = jem_apps::util::read_ints(&reference.heap, interp_result.unwrap().as_ref().unwrap());
    assert_eq!(a, b, "downloaded code must compute identical results");
    println!("verified: downloaded native code sorts identically to the interpreter.");
    println!(
        "\nnote: downloaded native code bypasses the bytecode verifier — the JVM's\n\
         verification 'does not work for native code' (paper §3.3); this channel\n\
         requires a trusted server, exactly as the paper assumes."
    );
}
